// Command libgen generates degradation-aware cell libraries (the paper's
// Sec. 4.1 artifact): one .alib per duty-cycle scenario, optionally the
// full 121-library grid, and the merged lambda-indexed complete library.
//
// Usage:
//
//	libgen -out libs -years 10            # fresh + worst-case + balance
//	libgen -out libs -years 10 -grid      # all 121 lambda combinations
//	libgen -out libs -years 10 -merged    # additionally write complete.alib
//	libgen -grid -j 4                     # cap the simulation worker pool
//	libgen -grid -metrics -trace-out run.json -pprof :6060
//	libgen -grid -retries 4 -timeout 2h   # deeper solver ladder, time budget
//	libgen -strict                        # refuse interpolated grid points
//
// Characterization runs on a worker pool using every CPU by default; -j
// bounds it (1 = serial). Scenario output order is always deterministic.
// Ctrl-C cancels the run cleanly: in-flight transient simulations stop
// within one time step and no partial cache entries are left behind.
//
// Runs are fault tolerant by default: a non-convergent transient climbs a
// solver escalation ladder (-retries rungs), isolated permanently failing
// grid points are salvaged by neighbor interpolation (disable with
// -strict), and a scenario that still fails does not abort the remaining
// scenarios — libgen finishes the rest and exits nonzero listing the
// failures. With a cache directory, completed cells are checkpointed on
// disk, so a killed or crashed run resumes where it left off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"ageguard/internal/aging"
	"ageguard/internal/char"
	"ageguard/internal/cli"
	"ageguard/internal/liberty"
	"ageguard/internal/obs"
)

func main() {
	var (
		out    = flag.String("out", "libs", "output directory")
		years  = flag.Float64("years", 10, "projected lifetime in years")
		grid   = flag.Bool("grid", false, "generate the full 11x11 duty-cycle grid (121 libraries)")
		merged = flag.Bool("merged", false, "also write the merged complete library")
		libFmt = flag.Bool("liberty", false, "additionally emit genuine Liberty (.lib) syntax")
		cache  = flag.String("cache", char.RepoCacheDir(), "characterization cache directory ('' disables)")
		par    = flag.Int("j", 0, "parallel simulation workers (0 = all CPUs, 1 = serial)")
		cells  = flag.String("cells", "", "comma-separated cell subset (default: all cells)")
	)
	c := cli.Register("libgen", flag.CommandLine)
	flag.Parse()

	c.Main(context.Background(), func(ctx context.Context) error {
		return run(ctx, *out, *years, *grid, *merged, *libFmt, *cache, *par, *cells, c.Retries, c.Strict)
	})
}

func run(ctx context.Context, out string, years float64, grid, merged, libFmt bool, cache string, par int, cellList string, retries int, strict bool) error {
	ctx, sp := obs.StartSpan(ctx, "libgen.run")
	defer sp.End()

	cfg := char.New(
		char.WithCacheDir(cache),
		char.WithParallelism(par),
		char.WithRetries(retries),
		char.WithStrict(strict),
	)
	if cellList != "" {
		cfg.Cells = strings.Split(cellList, ",")
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	scenarios := []aging.Scenario{
		aging.Fresh(),
		aging.WorstCase(years),
		aging.BalanceCase(years),
	}
	if grid {
		scenarios = append([]aging.Scenario{aging.Fresh()}, aging.GridScenarios(years)...)
	}

	// A permanently failing scenario is reported and skipped so the rest
	// of the run (often hours of grid characterization) still completes;
	// only cancellation — Ctrl-C or -timeout — aborts everything.
	var libs []*liberty.Library
	var failed []*char.ScenarioError
	for i, s := range scenarios {
		cfg.Progress = func(done, total int) {
			fmt.Printf("\r[%d/%d] %-24s cell %d/%d   ", i+1, len(scenarios), s, done, total)
		}
		lib, err := cfg.Characterize(ctx, s)
		if err != nil {
			fmt.Println()
			if errors.Is(err, char.ErrCanceled) {
				return err
			}
			log.Printf("scenario %s failed: %v", s, err)
			failed = append(failed, &char.ScenarioError{Scenario: s, Err: err})
			continue
		}
		libs = append(libs, lib)
		path := filepath.Join(out, lib.Name+".alib")
		if err := writeLib(path, lib); err != nil {
			return err
		}
		if libFmt {
			if err := writeDotLib(filepath.Join(out, lib.Name+".lib"), lib); err != nil {
				return err
			}
		}
		fmt.Printf("\r[%d/%d] %-24s -> %s%20s\n", i+1, len(scenarios), s, path, "")
	}

	if merged && len(libs) > 0 {
		m := liberty.MergeLibraries("complete", libs)
		path := filepath.Join(out, "complete.alib")
		if err := writeLib(path, &m.Library); err != nil {
			return err
		}
		fmt.Printf("merged %d libraries (%d cells) -> %s\n", len(libs), len(m.Cells), path)
	}
	if len(failed) > 0 {
		return &char.SweepError{Failed: failed, Total: len(scenarios)}
	}
	return nil
}

func writeLib(path string, lib *liberty.Library) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return liberty.Write(f, lib)
}

func writeDotLib(path string, lib *liberty.Library) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return liberty.WriteLiberty(f, lib)
}
