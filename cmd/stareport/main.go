// Command stareport runs static timing analysis on a benchmark circuit
// under a chosen aging scenario and prints a PrimeTime-style report:
// the critical path with per-stage arc delays and slews, the endpoint
// slack histogram, and optional Verilog/SDF/Liberty artifact dumps for
// external tools.
//
// Usage:
//
//	stareport -circuit FFT -scenario worst -years 10
//	stareport -circuit DSP -sdf dsp.sdf -verilog dsp.v -lib aged.lib
//	stareport -circuit FFT -metrics -trace-out run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"ageguard/internal/aging"
	"ageguard/internal/cli"
	"ageguard/internal/core"
	"ageguard/internal/liberty"
	"ageguard/internal/netlist"
	"ageguard/internal/obs"
	"ageguard/internal/sta"
	"ageguard/internal/units"
)

func main() {
	var (
		circuit  = flag.String("circuit", "FFT", "benchmark circuit")
		scenario = flag.String("scenario", "worst", "aging scenario: fresh, worst, balance")
		years    = flag.Float64("years", 10, "lifetime in years")
		sdfOut   = flag.String("sdf", "", "write SDF delay annotation to this file")
		vOut     = flag.String("verilog", "", "write structural Verilog to this file")
		libOut   = flag.String("lib", "", "write the scenario's Liberty library to this file")
	)
	c := cli.Register("stareport", flag.CommandLine)
	flag.Parse()

	c.Main(context.Background(), func(ctx context.Context) error {
		return run(ctx, *circuit, *scenario, *years, *sdfOut, *vOut, *libOut, c.Retries, c.Strict)
	})
}

func run(ctx context.Context, circuit, scenario string, years float64, sdfOut, vOut, libOut string, retries int, strict bool) error {
	ctx, sp := obs.StartSpan(ctx, "stareport.run")
	defer sp.End()
	f := core.New(core.WithLifetime(years), core.WithRetries(retries), core.WithStrict(strict))
	var s aging.Scenario
	switch scenario {
	case "fresh":
		s = aging.Fresh()
	case "worst":
		s = aging.WorstCase(years)
	case "balance":
		s = aging.BalanceCase(years)
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	lib, err := f.Library(ctx, s)
	if err != nil {
		return err
	}
	nl, err := f.SynthesizeTraditional(ctx, circuit)
	if err != nil {
		return err
	}
	res, err := sta.Analyze(ctx, nl, lib, f.STA)
	if err != nil {
		return err
	}

	fmt.Printf("design %s under %s: critical path %s (f = %.2f GHz)\n\n",
		circuit, s, units.PsString(res.CP), 1e-9/res.CP)
	fmt.Printf("startpoint: %s\nendpoint:   %s (%v)\n\n",
		res.Worst.Launch, res.Worst.Endpoint, res.Worst.EndEdge)
	fmt.Printf("%-24s %-14s %5s %10s %12s\n", "instance", "cell", "edge", "delay", "arrival")
	for _, st := range res.Worst.Steps {
		fmt.Printf("%-24s %-14s %5v %10s %12s\n",
			st.Inst, st.Cell, st.OutEdge, units.PsString(st.Delay), units.PsString(st.Arrival))
	}
	if res.Worst.Setup > 0 {
		fmt.Printf("%-24s %-14s %5s %10s %12s\n", "(setup)", "", "",
			units.PsString(res.Worst.Setup), units.PsString(res.Worst.Delay))
	}

	fmt.Println("\nendpoint slack distribution:")
	printSlackHisto(nl, lib, res)

	if vOut != "" {
		if err := writeFile(vOut, func(w *os.File) error { return netlist.WriteVerilog(w, nl) }); err != nil {
			return err
		}
	}
	if sdfOut != "" {
		if err := writeFile(sdfOut, func(w *os.File) error { return sta.WriteSDF(w, nl, lib, res, f.STA) }); err != nil {
			return err
		}
	}
	if libOut != "" {
		if err := writeFile(libOut, func(w *os.File) error { return liberty.WriteLiberty(w, lib) }); err != nil {
			return err
		}
	}
	return nil
}

func printSlackHisto(nl *netlist.Netlist, lib *liberty.Library, res *sta.Result) {
	var slacks []float64
	for _, in := range nl.Insts {
		ct := lib.MustCell(in.Cell)
		if ct.Seq {
			if s, ok := res.Slack[in.Pins[ct.Data]]; ok {
				slacks = append(slacks, s)
			}
		}
	}
	for _, po := range nl.Outputs {
		if s, ok := res.Slack[po]; ok {
			slacks = append(slacks, s)
		}
	}
	if len(slacks) == 0 {
		return
	}
	sort.Float64s(slacks)
	bins := 8
	lo, hi := slacks[0], slacks[len(slacks)-1]
	if hi == lo {
		hi = lo + 1e-12
	}
	counts := make([]int, bins)
	for _, s := range slacks {
		i := int(float64(bins) * (s - lo) / (hi - lo))
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	for i, c := range counts {
		a := lo + float64(i)*(hi-lo)/float64(bins)
		b := lo + float64(i+1)*(hi-lo)/float64(bins)
		fmt.Printf("  [%9s, %9s) %5d endpoints\n", units.PsString(a), units.PsString(b), c)
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fn(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
