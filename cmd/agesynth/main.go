// Command agesynth compares traditional synthesis against aging-aware
// synthesis with the degradation-aware library (the paper's Fig. 4c /
// Fig. 6a-b): required vs contained guardband, frequency gain and area
// overhead per circuit.
//
// Usage:
//
//	agesynth -circuit FFT
//	agesynth -all -metrics -trace-out run.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"

	"ageguard/internal/conc"
	"ageguard/internal/core"
	"ageguard/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("agesynth: ")
	var (
		circuit = flag.String("circuit", "FFT", "benchmark circuit name")
		all     = flag.Bool("all", false, "run every benchmark circuit")
		years   = flag.Float64("years", 10, "projected lifetime in years")
		retries = flag.Int("retries", 0, "solver escalation-ladder depth per grid point (0 = default, negative = off)")
		strict  = flag.Bool("strict", false, "fail on non-convergent grid points instead of salvaging by interpolation")
	)
	o := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, _, finish := o.Setup(context.Background())
	err := run(ctx, *circuit, *all, *years, *retries, *strict)
	finish()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		log.Fatal("deadline exceeded (-timeout)")
	case errors.Is(err, conc.ErrCanceled):
		log.Fatal("interrupted")
	case err != nil:
		log.Fatal(err)
	}
}

func run(ctx context.Context, circuit string, all bool, years float64, retries int, strict bool) error {
	ctx, sp := obs.StartSpan(ctx, "agesynth.run")
	defer sp.End()
	f := core.New(core.WithLifetime(years), core.WithRetries(retries), core.WithStrict(strict))
	circuits := []string{circuit}
	if all {
		circuits = core.BenchmarkCircuits()
	}
	rep, err := f.ContainmentAllContext(ctx, circuits)
	if err != nil {
		return err
	}
	fmt.Print(rep.Format())
	return nil
}
