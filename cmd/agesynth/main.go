// Command agesynth compares traditional synthesis against aging-aware
// synthesis with the degradation-aware library (the paper's Fig. 4c /
// Fig. 6a-b): required vs contained guardband, frequency gain and area
// overhead per circuit.
//
// Usage:
//
//	agesynth -circuit FFT
//	agesynth -all -metrics -trace-out run.json
package main

import (
	"context"
	"flag"
	"fmt"

	"ageguard/internal/cli"
	"ageguard/internal/core"
	"ageguard/internal/obs"
	"ageguard/internal/sta"
	"ageguard/internal/units"
)

func main() {
	var (
		circuit = flag.String("circuit", "FFT", "benchmark circuit name")
		all     = flag.Bool("all", false, "run every benchmark circuit")
		years   = flag.Float64("years", 10, "projected lifetime in years")
		outload = flag.Float64("outload", 0, "primary-output load in fF (0 = flow default)")
		wirecap = flag.Float64("wirecap", 0, "per-net wire capacitance in fF (0 = flow default)")
	)
	c := cli.Register("agesynth", flag.CommandLine)
	flag.Parse()

	c.Main(context.Background(), func(ctx context.Context) error {
		return run(ctx, *circuit, *all, *years, c.Retries, c.Strict, *outload, *wirecap)
	})
}

func run(ctx context.Context, circuit string, all bool, years float64, retries int, strict bool, outloadFF, wirecapFF float64) error {
	ctx, sp := obs.StartSpan(ctx, "agesynth.run")
	defer sp.End()
	opts := []core.Option{core.WithLifetime(years), core.WithRetries(retries), core.WithStrict(strict)}
	if outloadFF != 0 || wirecapFF != 0 {
		opts = append(opts, core.WithSTAConfig(sta.Config{
			OutputLoad: outloadFF * units.FF,
			WireCap:    wirecapFF * units.FF,
		}))
	}
	f := core.New(opts...)
	circuits := []string{circuit}
	if all {
		circuits = core.BenchmarkCircuits()
	}
	rep, err := f.ContainmentAll(ctx, circuits)
	if err != nil {
		return err
	}
	fmt.Print(rep.Format())
	return nil
}
