// Command agesynth compares traditional synthesis against aging-aware
// synthesis with the degradation-aware library (the paper's Fig. 4c /
// Fig. 6a-b): required vs contained guardband, frequency gain and area
// overhead per circuit.
//
// Usage:
//
//	agesynth -circuit FFT
//	agesynth -all -metrics -trace-out run.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"

	"ageguard/internal/conc"
	"ageguard/internal/core"
	"ageguard/internal/obs"
	"ageguard/internal/sta"
	"ageguard/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("agesynth: ")
	var (
		circuit = flag.String("circuit", "FFT", "benchmark circuit name")
		all     = flag.Bool("all", false, "run every benchmark circuit")
		years   = flag.Float64("years", 10, "projected lifetime in years")
		retries = flag.Int("retries", 0, "solver escalation-ladder depth per grid point (0 = default, negative = off)")
		strict  = flag.Bool("strict", false, "fail on non-convergent grid points instead of salvaging by interpolation")
		outload = flag.Float64("outload", 0, "primary-output load in fF (0 = flow default)")
		wirecap = flag.Float64("wirecap", 0, "per-net wire capacitance in fF (0 = flow default)")
	)
	o := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, _, finish := o.Setup(context.Background())
	err := run(ctx, *circuit, *all, *years, *retries, *strict, *outload, *wirecap)
	finish()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		log.Fatal("deadline exceeded (-timeout)")
	case errors.Is(err, conc.ErrCanceled):
		log.Fatal("interrupted")
	case err != nil:
		log.Fatal(err)
	}
}

func run(ctx context.Context, circuit string, all bool, years float64, retries int, strict bool, outloadFF, wirecapFF float64) error {
	ctx, sp := obs.StartSpan(ctx, "agesynth.run")
	defer sp.End()
	opts := []core.Option{core.WithLifetime(years), core.WithRetries(retries), core.WithStrict(strict)}
	if outloadFF != 0 || wirecapFF != 0 {
		opts = append(opts, core.WithSTAConfig(sta.Config{
			OutputLoad: outloadFF * units.FF,
			WireCap:    wirecapFF * units.FF,
		}))
	}
	f := core.New(opts...)
	circuits := []string{circuit}
	if all {
		circuits = core.BenchmarkCircuits()
	}
	rep, err := f.ContainmentAllContext(ctx, circuits)
	if err != nil {
		return err
	}
	fmt.Print(rep.Format())
	return nil
}
