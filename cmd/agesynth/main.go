// Command agesynth compares traditional synthesis against aging-aware
// synthesis with the degradation-aware library (the paper's Fig. 4c /
// Fig. 6a-b): required vs contained guardband, frequency gain and area
// overhead per circuit.
//
// Usage:
//
//	agesynth -circuit FFT
//	agesynth -all
package main

import (
	"flag"
	"fmt"
	"log"

	"ageguard/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("agesynth: ")
	var (
		circuit = flag.String("circuit", "FFT", "benchmark circuit name")
		all     = flag.Bool("all", false, "run every benchmark circuit")
		years   = flag.Float64("years", 10, "projected lifetime in years")
	)
	flag.Parse()

	f := core.Default()
	f.Lifetime = *years
	circuits := []string{*circuit}
	if *all {
		circuits = core.BenchmarkCircuits()
	}
	rep, err := f.ContainmentAll(circuits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Format())
}
