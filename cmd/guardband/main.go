// Command guardband estimates aging guardbands for the benchmark circuits
// (the paper's Fig. 4b flow): synthesize traditionally, then time the
// netlist under static worst-case/balanced stress or under the dynamic
// stress extracted from a simulated workload.
//
// Usage:
//
//	guardband -circuit DSP                  # static worst-case, 10 years
//	guardband -circuit FFT -scenario balance
//	guardband -circuit DSP -scenario dynamic -steps 64
//	guardband -circuit DSP -scenario grid   # full 11x11 duty-cycle sweep
//	guardband -circuit DSP -scenario mc -samples 256 -seed 7
//	guardband -all -metrics -trace-out run.json
//
// -scenario mc runs the process-variation Monte Carlo estimation: N
// seeded per-instance samples of the worst-case guardband, reported as
// mean/quantiles instead of a single point (equal seeds reproduce
// bit-identical distributions).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"

	"ageguard/internal/aging"
	"ageguard/internal/cli"
	"ageguard/internal/core"
	"ageguard/internal/device"
	"ageguard/internal/obs"
	"ageguard/internal/sta"
	"ageguard/internal/units"
)

func main() {
	var (
		circuit  = flag.String("circuit", "DSP", "benchmark circuit name")
		all      = flag.Bool("all", false, "run every benchmark circuit")
		scenario = flag.String("scenario", "worst", "aging stress: worst, balance, dynamic, grid or mc")
		years    = flag.Float64("years", 10, "projected lifetime in years")
		steps    = flag.Int("steps", 32, "workload steps (x64 vectors) for dynamic stress")
		seed     = flag.Int64("seed", 1, "workload seed (dynamic stress) or sample-stream seed (mc)")
		samples  = flag.Int("samples", core.DefaultMCSamples, "Monte Carlo sample count for -scenario mc")
		outload  = flag.Float64("outload", 0, "primary-output load in fF (0 = flow default)")
		wirecap  = flag.Float64("wirecap", 0, "per-net wire capacitance in fF (0 = flow default)")
	)
	c := cli.Register("guardband", flag.CommandLine)
	flag.Parse()

	c.Main(context.Background(), func(ctx context.Context) error {
		return run(ctx, *circuit, *all, *scenario, *years, *steps, *seed, *samples,
			c.Retries, c.Strict, staOptions(*outload, *wirecap))
	})
}

// staOptions converts the -outload/-wirecap flags (fF, 0 = keep the flow
// default) into core options overriding the flow's sta.Config.
func staOptions(outloadFF, wirecapFF float64) []core.Option {
	if outloadFF == 0 && wirecapFF == 0 {
		return nil
	}
	cfg := sta.Config{
		OutputLoad: outloadFF * units.FF,
		WireCap:    wirecapFF * units.FF,
	}
	return []core.Option{core.WithSTAConfig(cfg)}
}

func run(ctx context.Context, circuit string, all bool, scenario string, years float64, steps int, seed int64, samples, retries int, strict bool, staOpts []core.Option) error {
	ctx, sp := obs.StartSpan(ctx, "guardband.run")
	defer sp.End()
	opts := append([]core.Option{
		core.WithLifetime(years), core.WithRetries(retries), core.WithStrict(strict),
	}, staOpts...)
	f := core.New(opts...)
	circuits := []string{circuit}
	if all {
		circuits = core.BenchmarkCircuits()
	}
	if scenario == "grid" {
		for _, c := range circuits {
			g, err := f.GuardbandGridFor(ctx, c)
			if err != nil {
				return fmt.Errorf("%s: %w", c, err)
			}
			fmt.Print(g.Format())
		}
		return nil
	}
	if scenario == "mc" {
		fmt.Printf("%-10s %12s %12s %12s %12s %12s %12s\n",
			"circuit", "nominal", "mean", "p50", "p95", "p99.9", "max")
		for _, c := range circuits {
			res, err := f.MCGuardband(ctx, c, aging.WorstCase(years), core.MCConfig{
				Samples:   samples,
				Seed:      uint64(seed),
				Variation: device.DefaultVariation(),
			})
			if err != nil {
				return fmt.Errorf("%s: %w", c, err)
			}
			fmt.Printf("%-10s %12s %12s %12s %12s %12s %12s\n", c,
				units.PsString(res.AgedCPS-res.FreshCPS), units.PsString(res.MeanS),
				units.PsString(res.P50S), units.PsString(res.P95S),
				units.PsString(res.P999S), units.PsString(res.MaxS))
		}
		return nil
	}
	fmt.Printf("%-10s %12s %12s %12s\n", "circuit", "freshCP", "agedCP", "guardband")
	for _, c := range circuits {
		gb, err := estimate(ctx, f, c, scenario, years, steps, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", c, err)
		}
		fmt.Printf("%-10s %12s %12s %12s\n", c,
			units.PsString(gb.FreshCP), units.PsString(gb.AgedCP), units.PsString(gb.Guardband))
	}
	return nil
}

func estimate(ctx context.Context, f core.Flow, circuit, scenario string, years float64, steps int, seed int64) (core.Guardband, error) {
	nl, err := f.SynthesizeTraditional(ctx, circuit)
	if err != nil {
		return core.Guardband{}, err
	}
	switch scenario {
	case "worst":
		return f.StaticGuardband(ctx, circuit, nl, aging.WorstCase(years))
	case "balance":
		return f.StaticGuardband(ctx, circuit, nl, aging.BalanceCase(years))
	case "dynamic":
		rng := rand.New(rand.NewSource(seed))
		stim := func(int) map[string]uint64 {
			in := make(map[string]uint64, len(nl.Inputs))
			for _, pi := range nl.Inputs {
				in[pi] = rng.Uint64()
			}
			return in
		}
		gb, _, err := f.DynamicGuardband(ctx, circuit, nl, stim, steps)
		return gb, err
	default:
		return core.Guardband{}, fmt.Errorf("unknown scenario %q", scenario)
	}
}
