// Command ageguardd serves guardband and timing queries over HTTP/JSON
// against pre-characterized degradation-aware libraries (wire types in
// pkg/ageguard/api, typed client in pkg/ageguard/client).
//
// Usage:
//
//	ageguardd                                # serve on :8347
//	ageguardd -addr :9000 -cache-size 256
//	ageguardd -quick                         # reduced 3x3 grid, smoke/dev
//	ageguardd -quick -smoke                  # one query per endpoint, then drain
//	ageguardd -loadgen -bench-out BENCH_PR7.json
//	ageguardd -quick -loadgen-batch -bench-out BENCH_PR9.json
//	ageguardd -quick -loadgen-mc -bench-out BENCH_PR10.json
//
// Endpoints: POST /v1/guardband, /v1/celltiming, /v1/grid, /v1/paths,
// /v1/mcguardband (process-variation Monte Carlo guardband
// distribution), /v1/batch (heterogeneous items, planned server-side so
// shared subproblems characterize once); GET /healthz (liveness), /readyz
// (readiness: 503 until the
// -warm-start scan completes and again while draining), /metrics
// (text), /metrics.json, /debug/pprof.
//
// Queries answer from a bounded in-memory LRU of parsed libraries,
// synthesized netlists and compiled STA engines; concurrent identical
// cold queries characterize once (singleflight). Past the admission
// queue the daemon sheds load with 429 + Retry-After. Every request
// runs under -req-timeout, which propagates into the transient solver's
// per-time-step cancellation checks; expiry reports 504 and leaves no
// partial cache files. SIGTERM drains gracefully: the listener closes,
// in-flight requests finish, then the process exits.
//
// -loadgen benchmarks the daemon against itself on a loopback listener:
// one cold guardband query (the work of a cold CLI invocation) versus
// the warm-cache latency distribution, written to -bench-out.
// -loadgen-batch measures one /v1/batch request against the same items
// issued as sequential singles, cold and warm (the BENCH_PR9.json
// producer). -loadgen-mc measures a cold versus warm Monte Carlo
// guardband query (asserting byte identity) plus the engine-level
// sensitivity-vs-exact differential (the BENCH_PR10.json producer).
// -smoke boots the daemon the same way, issues one query per
// endpoint (including a heterogeneous batch) and asserts success plus a
// clean drain (the make serve-smoke / CI gate).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"ageguard/internal/char"
	"ageguard/internal/cli"
	"ageguard/internal/core"
	"ageguard/internal/obs"
	"ageguard/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8347", "listen address")
		cacheSize   = flag.Int("cache-size", 128, "in-memory LRU entry bound")
		maxInflight = flag.Int("max-inflight", 4, "requests doing work concurrently")
		queueDepth  = flag.Int("queue", 16, "admission queue depth beyond -max-inflight")
		reqTimeout  = flag.Duration("req-timeout", 5*time.Minute, "per-request deadline")
		drain       = flag.Duration("drain-timeout", 2*time.Minute, "graceful shutdown bound on SIGTERM")
		years       = flag.Float64("years", 10, "default projected lifetime in years")
		cacheDir    = flag.String("cache", char.RepoCacheDir(), "characterization cache directory ('' disables)")
		quick       = flag.Bool("quick", false, "reduced 3x3 characterization grid (smoke tests, development)")

		smoke     = flag.Bool("smoke", false, "query every endpoint once in-process, then exit")
		loadgen   = flag.Bool("loadgen", false, "benchmark the daemon in-process instead of serving")
		lgReqs    = flag.Int("loadgen-requests", 200, "loadgen warm-phase request count")
		lgConc    = flag.Int("loadgen-conc", 4, "loadgen concurrent clients")
		lgCircuit = flag.String("loadgen-circuit", "RISC-5P", "loadgen benchmark circuit")
		benchOut  = flag.String("bench-out", "BENCH_PR7.json", "loadgen report path")

		loadgenBatch = flag.Bool("loadgen-batch", false, "benchmark /v1/batch against sequential singles instead of serving")
		lgbItems     = flag.Int("loadgen-batch-items", 32, "loadgen-batch heterogeneous item count")
		lgbIters     = flag.Int("loadgen-batch-iters", 5, "loadgen-batch warm-phase repetitions (best-of)")

		loadgenMC  = flag.Bool("loadgen-mc", false, "benchmark /v1/mcguardband and the sensitivity-vs-exact differential instead of serving")
		lgmSamples = flag.Int("loadgen-mc-samples", core.DefaultMCSamples, "loadgen-mc Monte Carlo sample count")
		lgmExact   = flag.Int("loadgen-mc-exact", 8, "loadgen-mc exact-mode (full SPICE) sample count")
		lgmSeed    = flag.Uint64("loadgen-mc-seed", 1, "loadgen-mc sample-stream seed")
	)
	c := cli.Register("ageguardd", flag.CommandLine)
	sf := cli.RegisterServe(flag.CommandLine)
	flag.Parse()

	c.Main(context.Background(), func(ctx context.Context) error {
		charCfg := char.CachedConfig()
		if *quick {
			charCfg = char.TestConfig()
		}
		charCfg.CacheDir = *cacheDir
		flow := core.New(
			core.WithCharConfig(charCfg),
			core.WithLifetime(*years),
			core.WithRetries(c.Retries),
			core.WithStrict(c.Strict),
		)
		cfg := serve.Config{
			Flow:           flow,
			CacheSize:      *cacheSize,
			MaxInflight:    *maxInflight,
			QueueDepth:     *queueDepth,
			RequestTimeout: *reqTimeout,
			DrainTimeout:   *drain,
			WarmStart:      sf.WarmStart,
			ScrubInterval:  sf.ScrubInterval,
			DrainGrace:     sf.DrainGrace,
		}

		if *smoke {
			if err := serve.Smoke(ctx, cfg, serve.SmokeConfig{Circuit: *lgCircuit}, log.Default()); err != nil {
				return err
			}
			fmt.Println("serve smoke OK")
			return nil
		}
		if *loadgenBatch {
			rep, err := serve.LoadgenBatch(ctx, cfg, serve.BatchLoadgenConfig{
				Items:   *lgbItems,
				Iters:   *lgbIters,
				Circuit: *lgCircuit,
				Out:     *benchOut,
			})
			if err != nil {
				return err
			}
			fmt.Printf("cold singles / batch %8.3f / %.3f s  (%.2fx)\n",
				rep.ColdSinglesS, rep.ColdBatchS, rep.ColdBatchVsSingles)
			fmt.Printf("warm singles / batch %8.5f / %.5f s  (%.2fx)\n",
				rep.WarmSinglesS, rep.WarmBatchS, rep.WarmBatchVsSingles)
			fmt.Printf("unique fills         %8d  for %d items\n", rep.UniqueFills, rep.BatchItems)
			fmt.Printf("items bit-identical  %8v\n", rep.ItemsBitIdentical)
			if *benchOut != "" {
				fmt.Printf("wrote %s\n", *benchOut)
			}
			return nil
		}
		if *loadgenMC {
			rep, err := serve.LoadgenMC(ctx, cfg, serve.MCLoadgenConfig{
				Samples:      *lgmSamples,
				ExactSamples: *lgmExact,
				Circuit:      *lgCircuit,
				Seed:         *lgmSeed,
				Out:          *benchOut,
			})
			if err != nil {
				return err
			}
			fmt.Printf("cold / warm mc query %8.3f / %.5f s  (%.1fx)\n",
				rep.ColdMCQueryS, rep.WarmMCQueryS, rep.SpeedupWarmVsCold)
			fmt.Printf("warm byte-identical  %8v\n", rep.WarmByteIdentical)
			fmt.Printf("per-sample sens/exact %7.5f / %.3f s  (%.0fx)\n",
				rep.SensPerSampleS, rep.ExactPerSampleS, rep.SpeedupSensVsExact)
			fmt.Printf("p95 sens vs exact    %8.3g / %.3g s  (%.2f%% diff)\n",
				rep.SensP95S, rep.ExactP95S, rep.P95DiffPct)
			if *benchOut != "" {
				fmt.Printf("wrote %s\n", *benchOut)
			}
			return nil
		}
		if *loadgen {
			rep, err := serve.Loadgen(ctx, cfg, serve.LoadgenConfig{
				Requests:    *lgReqs,
				Concurrency: *lgConc,
				Circuit:     *lgCircuit,
				Out:         *benchOut,
			})
			if err != nil {
				return err
			}
			fmt.Printf("cold first query   %8.3f s\n", rep.ColdFirstQueryS)
			fmt.Printf("warm p50 / p99     %8.5f / %.5f s\n", rep.WarmP50s, rep.WarmP99s)
			fmt.Printf("warm QPS           %8.1f\n", rep.WarmQPS)
			fmt.Printf("speedup p99 v cold %8.1fx\n", rep.SpeedupP99VsCold)
			fmt.Printf("cache hit rate     %8.1f%%  (%d hits, %d misses, %d shared)\n",
				100*rep.CacheHitRate, rep.CacheHits, rep.CacheMisses, rep.CacheShared)
			if *benchOut != "" {
				fmt.Printf("wrote %s\n", *benchOut)
			}
			return nil
		}

		srv := serve.New(cfg, obs.From(ctx))
		log.Printf("serving on %s (api %s, cache %d entries, %d inflight + %d queued)",
			*addr, "v1", *cacheSize, *maxInflight, *queueDepth)
		return srv.Run(ctx, *addr)
	})
}
