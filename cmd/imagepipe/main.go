// Command imagepipe runs the paper's system-level study (Fig. 6c / 7):
// an image is encoded and decoded through gate-level simulations of the
// synthesized DCT and IDCT circuits under different aging scenarios, with
// no guardband, and the resulting images and PSNR values are reported.
//
// Usage:
//
//	imagepipe -out out -size 64
//	imagepipe -out out -in photo.pgm
//	imagepipe -out out -metrics -trace-out run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ageguard/internal/cli"
	"ageguard/internal/core"
	"ageguard/internal/image"
	"ageguard/internal/obs"
)

func main() {
	var (
		out  = flag.String("out", "out", "output directory for PGM images")
		size = flag.Int("size", 64, "synthetic test image size (multiple of 8)")
		in   = flag.String("in", "", "input PGM image (overrides -size)")
	)
	c := cli.Register("imagepipe", flag.CommandLine)
	flag.Parse()

	c.Main(context.Background(), func(ctx context.Context) error {
		return run(ctx, *out, *size, *in, c.Retries, c.Strict)
	})
}

func run(ctx context.Context, out string, size int, in string, retries int, strict bool) error {
	ctx, sp := obs.StartSpan(ctx, "imagepipe.run")
	defer sp.End()
	var img *image.Gray
	if in != "" {
		fh, err := os.Open(in)
		if err != nil {
			return err
		}
		var rerr error
		img, rerr = image.ReadPGM(fh)
		fh.Close()
		if rerr != nil {
			return rerr
		}
	} else {
		img = image.TestImage(size, size)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	if err := save(filepath.Join(out, "original.pgm"), img); err != nil {
		return err
	}

	f := core.New(core.WithRetries(retries), core.WithStrict(strict))
	cases := core.StandardImageCases()
	fmt.Println("running DCT-IDCT gate-level simulations (this synthesizes and")
	fmt.Println("characterizes on first run; results are cached under .libcache)")
	results, err := f.ImageStudy(ctx, img, cases)
	if err != nil {
		return err
	}
	fmt.Printf("\n%-22s %10s\n", "scenario", "PSNR [dB]")
	for _, r := range results {
		path := filepath.Join(out, r.Label+".pgm")
		if err := save(path, r.Out); err != nil {
			return err
		}
		fmt.Printf("%-22s %10.2f   -> %s\n", r.Label, r.PSNR, path)
	}
	fmt.Println("\n30 dB is the paper's threshold of acceptable quality.")
	return nil
}

func save(path string, g *image.Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return image.WritePGM(f, g)
}
